//! Trace replay: drive the array from a recorded block-I/O trace instead of
//! a synthetic distribution — the methodology production storage teams use
//! to validate against real workloads.
//!
//! The format is one record per line, whitespace-separated:
//!
//! ```text
//! <timestamp_us> <R|W> <offset_bytes> <length_bytes>
//! # comments and blank lines are ignored
//! ```
//!
//! Replay is open-loop: each record is submitted at its recorded timestamp
//! (optionally time-scaled), so burstiness and inter-arrival structure are
//! preserved exactly.

use std::cell::RefCell;
use std::rc::Rc;
use std::str::FromStr;

use draid_core::{ArraySim, IoKind, UserIo};
use draid_sim::{Engine, Histogram, SimTime};

/// One parsed trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Submission time relative to trace start.
    pub at: SimTime,
    /// Direction.
    pub kind: IoKind,
    /// Device byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Error produced when a trace line cannot be parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// A replayable block-I/O trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IoTrace {
    records: Vec<TraceRecord>,
}

impl IoTrace {
    /// Builds a trace from records (sorted by timestamp on construction).
    pub fn new(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.at);
        IoTrace { records }
    }

    /// The records in submission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total bytes touched by the trace.
    pub fn bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len).sum()
    }

    /// Duration from the first to the last submission.
    pub fn span(&self) -> SimTime {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(z)) => z.at.saturating_sub(a.at),
            _ => SimTime::ZERO,
        }
    }
}

impl FromStr for IoTrace {
    type Err = ParseTraceError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut records = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseTraceError {
                    line,
                    reason: format!("expected 4 fields, got {}", fields.len()),
                });
            }
            let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
                s.parse().map_err(|_| ParseTraceError {
                    line,
                    reason: format!("bad {what}: {s:?}"),
                })
            };
            let at = SimTime::from_micros(parse_u64(fields[0], "timestamp")?);
            let kind = match fields[1] {
                "R" | "r" => IoKind::Read,
                "W" | "w" => IoKind::Write,
                other => {
                    return Err(ParseTraceError {
                        line,
                        reason: format!("bad direction: {other:?} (want R or W)"),
                    })
                }
            };
            let offset = parse_u64(fields[2], "offset")?;
            let len = parse_u64(fields[3], "length")?;
            if len == 0 {
                return Err(ParseTraceError {
                    line,
                    reason: "zero-length I/O".into(),
                });
            }
            records.push(TraceRecord {
                at,
                kind,
                offset,
                len,
            });
        }
        Ok(IoTrace::new(records))
    }
}

/// Results of a trace replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Records submitted.
    pub submitted: u64,
    /// Records completed successfully.
    pub completed: u64,
    /// Records that failed.
    pub failed: u64,
    /// Latency distribution over completed records.
    pub latencies: Histogram,
    /// Simulated time from first submission to last completion.
    pub makespan: SimTime,
}

/// Replays a trace against the array, submitting each record at
/// `record.at * time_scale` (scale < 1 compresses the trace, > 1 stretches
/// it). Runs to completion and reports per-record latency.
///
/// # Panics
///
/// Panics if `time_scale` is not finite and positive.
pub fn replay(array: &mut ArraySim, trace: &IoTrace, time_scale: f64) -> ReplayReport {
    assert!(
        time_scale.is_finite() && time_scale > 0.0,
        "bad time scale {time_scale}"
    );
    let mut engine: Engine<ArraySim> = Engine::new();
    let stats = Rc::new(RefCell::new((0u64, 0u64, Histogram::new(), SimTime::ZERO)));
    for rec in trace.records() {
        let at = SimTime::from_secs_f64(rec.at.as_secs_f64() * time_scale);
        let io = match rec.kind {
            IoKind::Read => UserIo::read(rec.offset, rec.len),
            IoKind::Write => UserIo::write(rec.offset, rec.len),
        };
        let stats2 = Rc::clone(&stats);
        engine.schedule_at(at, move |array: &mut ArraySim, eng| {
            let stats3 = Rc::clone(&stats2);
            array.submit_with_hook(
                eng,
                io,
                Some(Box::new(move |_a, _e, res| {
                    let mut s = stats3.borrow_mut();
                    if res.is_ok() {
                        s.0 += 1;
                        s.2.record(res.latency());
                    } else {
                        s.1 += 1;
                    }
                    s.3 = s.3.max(res.completed);
                })),
            );
        });
    }
    // Drain everything (including the ops' §5.4 deadline timers, which are
    // no-ops once the ops completed); the makespan is the last completion.
    engine.run(array);
    array.drain_completions();
    let (completed, failed, latencies, last) = {
        let s = stats.borrow();
        (s.0, s.1, s.2.clone(), s.3)
    };
    ReplayReport {
        submitted: trace.len() as u64,
        completed,
        failed,
        latencies,
        makespan: last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draid_block::Cluster;
    use draid_core::{ArrayConfig, SystemKind};

    const SAMPLE: &str = "\
# time_us dir offset len
0    W 0       131072
100  W 131072  131072
250  R 0       65536
400  R 131072  131072
";

    #[test]
    fn parses_and_sorts() {
        let trace: IoTrace = SAMPLE.parse().expect("valid trace");
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.bytes(), 131072 * 3 + 65536);
        assert_eq!(trace.span(), SimTime::from_micros(400));
        assert_eq!(trace.records()[2].kind, IoKind::Read);

        // Out-of-order input is sorted.
        let shuffled: IoTrace = "5 W 0 4096\n1 R 0 4096\n".parse().expect("valid");
        assert_eq!(shuffled.records()[0].at, SimTime::from_micros(1));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = "0 W 0".parse::<IoTrace>().unwrap_err();
        assert_eq!(err.line, 1);
        let err = "0 X 0 4096".parse::<IoTrace>().unwrap_err();
        assert!(err.reason.contains("direction"));
        let err = "oops W 0 4096".parse::<IoTrace>().unwrap_err();
        assert!(err.reason.contains("timestamp"));
        let err = "0 W 0 0".parse::<IoTrace>().unwrap_err();
        assert!(err.reason.contains("zero-length"));
    }

    #[test]
    fn replay_completes_all_records() {
        let trace: IoTrace = SAMPLE.parse().expect("valid trace");
        let cfg = ArrayConfig::paper_default(SystemKind::Draid);
        let mut array = ArraySim::new(Cluster::homogeneous(8), cfg).expect("valid");
        let report = replay(&mut array, &trace, 1.0);
        assert_eq!(report.submitted, 4);
        assert_eq!(report.completed, 4);
        assert_eq!(report.failed, 0);
        assert_eq!(report.latencies.len(), 4);
        assert!(report.makespan >= SimTime::from_micros(400));
    }

    #[test]
    fn time_scale_compresses_the_schedule() {
        let trace: IoTrace = "0 W 0 4096\n100000 W 4096 4096\n".parse().expect("valid");
        let cfg = ArrayConfig::paper_default(SystemKind::Draid);
        let mut a1 = ArraySim::new(Cluster::homogeneous(8), cfg).expect("valid");
        let full = replay(&mut a1, &trace, 1.0);
        let mut a2 = ArraySim::new(Cluster::homogeneous(8), cfg).expect("valid");
        let tenth = replay(&mut a2, &trace, 0.1);
        assert!(tenth.makespan.as_nanos() < full.makespan.as_nanos() / 5);
    }
}
