//! Open-loop workload driving: arrivals follow a stochastic process
//! independent of completions, the right methodology for latency-under-load
//! curves and for the bursty, elastic traffic of the serverless platforms
//! that motivate disaggregated storage (§1 of the paper).

use std::cell::RefCell;
use std::rc::Rc;

use draid_core::ArraySim;
use draid_sim::{DetRng, Engine, SimTime};

use crate::{FioJob, RunReport, Runner};

/// Arrival process of an open-loop run.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalPattern {
    /// Poisson arrivals at a constant rate (ops/sec).
    Poisson {
        /// Mean arrival rate in operations per second.
        rate: f64,
    },
    /// On/off bursts: `burst_rate` for `duty` of each `period`, `idle_rate`
    /// for the rest — a serverless-style load shape.
    Burst {
        /// Arrival rate during the burst phase (ops/sec).
        burst_rate: f64,
        /// Arrival rate during the idle phase (ops/sec).
        idle_rate: f64,
        /// Length of one on+off cycle.
        period: SimTime,
        /// Fraction of the period spent bursting, in `(0, 1]`.
        duty: f64,
    },
}

impl ArrivalPattern {
    /// The instantaneous rate at simulated time `now`.
    pub fn rate_at(&self, now: SimTime) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate } => rate,
            ArrivalPattern::Burst {
                burst_rate,
                idle_rate,
                period,
                duty,
            } => {
                let phase = now.as_nanos() % period.as_nanos().max(1);
                if (phase as f64) < duty * period.as_nanos() as f64 {
                    burst_rate
                } else {
                    idle_rate
                }
            }
        }
    }

    /// Mean rate over a full cycle.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate } => rate,
            ArrivalPattern::Burst {
                burst_rate,
                idle_rate,
                duty,
                ..
            } => burst_rate * duty + idle_rate * (1.0 - duty),
        }
    }

    fn validate(&self) {
        match *self {
            ArrivalPattern::Poisson { rate } => {
                assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}")
            }
            ArrivalPattern::Burst {
                burst_rate,
                idle_rate,
                period,
                duty,
            } => {
                assert!(burst_rate > 0.0 && burst_rate.is_finite());
                assert!(idle_rate >= 0.0 && idle_rate.is_finite());
                assert!(period > SimTime::ZERO, "burst period must be positive");
                assert!((0.0..=1.0).contains(&duty) && duty > 0.0, "bad duty {duty}");
            }
        }
    }
}

/// Outcome of an open-loop run: the closed-loop [`RunReport`] plus
/// open-loop-specific observations.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct OpenLoopReport {
    /// The standard measurements over the measured window.
    pub report: RunReport,
    /// Offered load over the window (ops/sec).
    pub offered_ops_per_sec: f64,
    /// Largest number of simultaneously outstanding I/Os observed.
    pub peak_inflight: usize,
    /// Arrivals dropped because `max_inflight` was reached — nonzero means
    /// the array is overloaded at this offered rate.
    pub shed: u64,
}

impl OpenLoopReport {
    /// Whether the array kept up with the offered load.
    pub fn stable(&self) -> bool {
        self.shed == 0 && self.report.kiops * 1e3 >= self.offered_ops_per_sec * 0.95
    }
}

struct OpenState {
    rng: DetRng,
    inflight: usize,
    peak_inflight: usize,
    shed: u64,
    arrivals: u64,
}

/// Open-loop driver: submits I/Os per an [`ArrivalPattern`], bounded by
/// `max_inflight` (arrivals beyond the bound are shed and counted).
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopRunner {
    /// Arrival process.
    pub pattern: ArrivalPattern,
    /// Warm-up duration.
    pub warmup: SimTime,
    /// Measured duration.
    pub measure: SimTime,
    /// Outstanding-I/O bound (protects the simulation from unbounded queues
    /// in overload; 4096 by default).
    pub max_inflight: usize,
}

impl OpenLoopRunner {
    /// Creates a runner with the default 50 ms + 200 ms phases.
    pub fn new(pattern: ArrivalPattern) -> Self {
        pattern.validate();
        let base = Runner::new();
        OpenLoopRunner {
            pattern,
            warmup: base.warmup,
            measure: base.measure,
            max_inflight: 4096,
        }
    }

    /// Runs `job`'s access pattern under this arrival process.
    ///
    /// `job.queue_depth` is ignored — concurrency emerges from the arrival
    /// process and service times.
    pub fn run(&self, mut array: ArraySim, job: &FioJob) -> OpenLoopReport {
        self.pattern.validate();
        let mut engine: Engine<ArraySim> = Engine::new();
        let state = Rc::new(RefCell::new(OpenState {
            rng: DetRng::new(job.seed ^ 0x09E4_1009),
            inflight: 0,
            peak_inflight: 0,
            shed: 0,
            arrivals: 0,
        }));
        let params = Params {
            pattern: self.pattern,
            job: *job,
            max_inflight: self.max_inflight,
            measure_from: self.warmup,
            measure_to: self.warmup + self.measure,
        };
        schedule_arrival(&mut engine, &state, &params, SimTime::ZERO);

        engine.run_until(&mut array, self.warmup);
        array.drain_completions();
        array.reset_measurement(self.warmup);
        {
            let mut s = state.borrow_mut();
            s.arrivals = 0;
            s.shed = 0;
            s.peak_inflight = s.inflight;
        }
        let end = self.warmup + self.measure;
        let slices = 8u64;
        for i in 1..=slices {
            let t = self.warmup + SimTime::from_nanos(self.measure.as_nanos() * i / slices);
            engine.run_until(&mut array, t.min(end));
            array.drain_completions();
        }
        let report = crate::runner::report_from(&mut array, end, self.measure);
        let s = state.borrow();
        OpenLoopReport {
            offered_ops_per_sec: s.arrivals as f64 / self.measure.as_secs_f64(),
            peak_inflight: s.peak_inflight,
            shed: s.shed,
            report,
        }
    }
}

#[derive(Clone, Copy)]
struct Params {
    pattern: ArrivalPattern,
    job: FioJob,
    max_inflight: usize,
    measure_from: SimTime,
    measure_to: SimTime,
}

fn schedule_arrival(
    engine: &mut Engine<ArraySim>,
    state: &Rc<RefCell<OpenState>>,
    params: &Params,
    at: SimTime,
) {
    let state = Rc::clone(state);
    let params = *params;
    engine.schedule_at(at, move |array: &mut ArraySim, eng| {
        let now = eng.now();
        let (io, admit) = {
            let mut s = state.borrow_mut();
            if now >= params.measure_from && now < params.measure_to {
                s.arrivals += 1;
            }
            let admit = s.inflight < params.max_inflight;
            if admit {
                s.inflight += 1;
                s.peak_inflight = s.peak_inflight.max(s.inflight);
            } else if now >= params.measure_from && now < params.measure_to {
                s.shed += 1;
            }
            (params.job.next_io(&mut s.rng, array.layout()), admit)
        };
        if admit {
            let done_state = Rc::clone(&state);
            array.submit_with_hook(
                eng,
                io,
                Some(Box::new(move |_a, _e, _r| {
                    done_state.borrow_mut().inflight -= 1;
                })),
            );
        }
        // Next arrival: exponential inter-arrival at the instantaneous rate.
        let rate = params.pattern.rate_at(now).max(1e-3);
        let dt = {
            let mut s = state.borrow_mut();
            let u = s.rng.unit_f64();
            -(1.0 - u).ln() / rate
        };
        schedule_arrival(eng, &state, &params, now + SimTime::from_secs_f64(dt));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use draid_block::Cluster;
    use draid_core::{ArrayConfig, SystemKind};

    fn array() -> ArraySim {
        let cfg = ArrayConfig::paper_default(SystemKind::Draid);
        ArraySim::new(Cluster::homogeneous(cfg.width), cfg).expect("valid")
    }

    #[test]
    fn poisson_light_load_is_stable_and_low_latency() {
        let pattern = ArrivalPattern::Poisson { rate: 5_000.0 };
        let runner = OpenLoopRunner {
            pattern,
            warmup: SimTime::from_millis(10),
            measure: SimTime::from_millis(50),
            max_inflight: 4096,
        };
        let out = runner.run(array(), &FioJob::random_write(128 * 1024));
        assert!(out.stable(), "{out:?}");
        // Offered ~ achieved ~ 5K ops/s.
        assert!(
            (4_000.0..6_000.0).contains(&out.offered_ops_per_sec),
            "{out:?}"
        );
        assert!(out.report.mean_latency_us < 600.0, "{out:?}");
        assert_eq!(out.shed, 0);
    }

    #[test]
    fn overload_is_detected() {
        // Offer ~4x the 8-target RMW capacity (~38K ops of 128 KiB).
        let pattern = ArrivalPattern::Poisson { rate: 150_000.0 };
        let runner = OpenLoopRunner {
            pattern,
            warmup: SimTime::from_millis(10),
            measure: SimTime::from_millis(50),
            max_inflight: 512,
        };
        let out = runner.run(array(), &FioJob::random_write(128 * 1024));
        assert!(!out.stable(), "{out:?}");
        assert!(out.shed > 0, "overload must shed: {out:?}");
        assert!(out.peak_inflight >= 512);
    }

    #[test]
    fn burst_pattern_rates() {
        let p = ArrivalPattern::Burst {
            burst_rate: 10_000.0,
            idle_rate: 1_000.0,
            period: SimTime::from_millis(10),
            duty: 0.25,
        };
        assert_eq!(p.rate_at(SimTime::from_millis(1)), 10_000.0);
        assert_eq!(p.rate_at(SimTime::from_millis(6)), 1_000.0);
        assert!((p.mean_rate() - 3_250.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_inflate_tail_latency_vs_poisson_at_equal_mean() {
        let job = FioJob::random_write(128 * 1024);
        let mean = 16_000.0;
        let poisson = OpenLoopRunner {
            pattern: ArrivalPattern::Poisson { rate: mean },
            warmup: SimTime::from_millis(10),
            measure: SimTime::from_millis(80),
            max_inflight: 8192,
        }
        .run(array(), &job);
        let burst = OpenLoopRunner {
            pattern: ArrivalPattern::Burst {
                burst_rate: mean * 2.5,
                idle_rate: mean * 0.25,
                period: SimTime::from_millis(8),
                duty: 0.5,
            },
            warmup: SimTime::from_millis(10),
            measure: SimTime::from_millis(80),
            max_inflight: 8192,
        }
        .run(array(), &job);
        assert!(
            burst.report.p99_latency_us > 1.3 * poisson.report.p99_latency_us,
            "burst p99 {:.0} vs poisson p99 {:.0}",
            burst.report.p99_latency_us,
            poisson.report.p99_latency_us
        );
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_rejected() {
        OpenLoopRunner::new(ArrivalPattern::Poisson { rate: 0.0 });
    }
}
