//! The closed-loop benchmark runner.

use std::cell::RefCell;
use std::rc::Rc;

use draid_core::ArraySim;
use draid_sim::{Engine, SimTime};

use crate::{FioJob, FioStream};

/// Results of one measured run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct RunReport {
    /// User bandwidth over the measured window, decimal MB/s (the paper's
    /// bandwidth axis unit).
    pub bandwidth_mb_per_sec: f64,
    /// User throughput, thousands of I/Os per second.
    pub kiops: f64,
    /// Mean end-to-end latency, µs (the paper's latency axis unit).
    pub mean_latency_us: f64,
    /// Median latency, µs.
    pub p50_latency_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_latency_us: f64,
    /// Completed reads in the window.
    pub reads: u64,
    /// Completed writes in the window.
    pub writes: u64,
    /// Bytes the host NIC sent during the window.
    pub host_tx_bytes: u64,
    /// Bytes the host NIC received during the window.
    pub host_rx_bytes: u64,
    /// Peak per-member-core utilization over the window (§7's "<25% of the
    /// CPU cycles" check).
    pub max_member_cpu: f64,
    /// Host-core utilization over the window.
    pub host_cpu: f64,
    /// Stripe-op retries observed (§5.4).
    pub retries: u64,
    /// Op deadline expirations observed.
    pub timeouts: u64,
    /// User I/Os that took a degraded path.
    pub degraded_ios: u64,
    /// User I/Os that failed permanently.
    pub failed_ios: u64,
    /// Length of the measured window.
    pub window: SimTime,
}

/// Closed-loop driver with warm-up and measurement phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runner {
    /// Warm-up duration (counters are discarded).
    pub warmup: SimTime,
    /// Measured duration.
    pub measure: SimTime,
}

impl Runner {
    /// The default experiment shape: 50 ms warm-up, 200 ms measured — long
    /// enough for queue-depth equilibria at every operating point in the
    /// paper's sweeps.
    pub fn new() -> Self {
        Runner {
            warmup: SimTime::from_millis(50),
            measure: SimTime::from_millis(200),
        }
    }

    /// A short run for tests and doc examples.
    pub fn quick() -> Self {
        Runner {
            warmup: SimTime::from_millis(5),
            measure: SimTime::from_millis(20),
        }
    }

    /// Runs `job` against `array` and reports the measured window.
    ///
    /// The runner keeps `job.queue_depth` I/Os outstanding: every completion
    /// hook immediately submits the next I/O, so the array operates at a
    /// fixed concurrency like FIO's `iodepth`.
    pub fn run(&self, mut array: ArraySim, job: &FioJob) -> RunReport {
        let mut engine: Engine<ArraySim> = Engine::new();
        let stream = Rc::new(RefCell::new(FioStream::new(*job)));
        for _ in 0..job.queue_depth {
            submit_next(&mut array, &mut engine, &stream);
        }

        // Warm-up: run, then discard all counters.
        engine.run_until(&mut array, self.warmup);
        array.drain_completions();
        array.reset_measurement(self.warmup);

        // Measured window, drained in slices to bound completion memory.
        let end = self.warmup + self.measure;
        let slices = 8u64;
        let slice = SimTime::from_nanos(self.measure.as_nanos() / slices);
        for i in 1..=slices {
            let target = if i == slices {
                end
            } else {
                self.warmup + SimTime::from_nanos(slice.as_nanos() * i)
            };
            engine.run_until(&mut array, target);
            array.drain_completions();
        }

        report_from(&mut array, end, self.measure)
    }
}

/// Builds a [`RunReport`] from the array's measured-window state, where `now`
/// is the absolute end of the window (utilizations are clamped to it).
///
/// Takes `&mut` so percentiles sort the stats histograms in place instead of
/// cloning their sample vectors.
pub(crate) fn report_from(array: &mut ArraySim, now: SimTime, window: SimTime) -> RunReport {
    let (mean_us, p50, p99, counters) = {
        let stats = &mut array.stats;
        let mean_us = stats.mean_latency().as_micros_f64();
        // Merge read/write percentiles by the dominant class.
        let dominant = if stats.read_latency.len() >= stats.write_latency.len() {
            &mut stats.read_latency
        } else {
            &mut stats.write_latency
        };
        let (p50, p99) = if dominant.is_empty() {
            (0.0, 0.0)
        } else {
            (
                dominant.percentile(50.0).as_micros_f64(),
                dominant.percentile(99.0).as_micros_f64(),
            )
        };
        let counters = (
            stats.bandwidth_mb_per_sec(window),
            stats.kiops(window),
            stats.reads,
            stats.writes,
            stats.retries,
            stats.timeouts,
            stats.degraded_ios,
            stats.failed_ios,
        );
        (mean_us, p50, p99, counters)
    };
    let host = array.cluster.host_node();
    let max_member_cpu = (0..array.config().width)
        .map(|m| {
            array
                .cluster
                .cpu(array.cluster.server_node(draid_block::ServerId(m)))
                .utilization(now)
        })
        .fold(0.0f64, f64::max);
    let (bandwidth_mb_per_sec, kiops, reads, writes, retries, timeouts, degraded_ios, failed_ios) =
        counters;
    RunReport {
        bandwidth_mb_per_sec,
        kiops,
        mean_latency_us: mean_us,
        p50_latency_us: p50,
        p99_latency_us: p99,
        reads,
        writes,
        host_tx_bytes: array.cluster.fabric().bytes_sent(host),
        host_rx_bytes: array.cluster.fabric().bytes_received(host),
        max_member_cpu,
        host_cpu: array.cluster.cpu(host).utilization(now),
        retries,
        timeouts,
        degraded_ios,
        failed_ios,
        window,
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

fn submit_next(
    array: &mut ArraySim,
    engine: &mut Engine<ArraySim>,
    stream: &Rc<RefCell<FioStream>>,
) {
    let io = stream.borrow_mut().next_io(array.layout());
    let stream2 = Rc::clone(stream);
    array.submit_with_hook(
        engine,
        io,
        Some(Box::new(move |array, engine, _res| {
            submit_next(array, engine, &stream2);
        })),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use draid_block::Cluster;
    use draid_core::{ArrayConfig, ArraySim, SystemKind};

    fn array(system: SystemKind) -> ArraySim {
        let cfg = ArrayConfig::paper_default(system);
        ArraySim::new(Cluster::homogeneous(cfg.width), cfg).expect("valid")
    }

    #[test]
    fn sustained_write_run_reports_sane_numbers() {
        let report = Runner::quick().run(
            array(SystemKind::Draid),
            &FioJob::random_write(128 * 1024).queue_depth(16),
        );
        assert!(report.writes > 0);
        assert_eq!(report.reads, 0);
        assert!(report.bandwidth_mb_per_sec > 100.0, "{report:?}");
        assert!(report.mean_latency_us > 1.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
        assert_eq!(report.failed_ios, 0);
    }

    #[test]
    fn draid_beats_centralized_on_partial_writes() {
        // At the paper's 8-target default the drives bound both systems, so
        // the gap is modest here (see EXPERIMENTS.md); at width 18 the host
        // NIC binds and the Fig. 12 2x separation must appear.
        let job = FioJob::random_write(128 * 1024).queue_depth(32);
        let draid = Runner::quick().run(array(SystemKind::Draid), &job);
        let spdk = Runner::quick().run(array(SystemKind::SpdkRaid), &job);
        assert!(
            draid.bandwidth_mb_per_sec > 1.05 * spdk.bandwidth_mb_per_sec,
            "width 8: draid {:.0} vs spdk {:.0}",
            draid.bandwidth_mb_per_sec,
            spdk.bandwidth_mb_per_sec
        );

        let wide = |system: SystemKind| {
            let mut cfg = ArrayConfig::paper_default(system);
            cfg.width = 18;
            let array = ArraySim::new(Cluster::homogeneous(18), cfg).expect("valid");
            Runner::quick()
                .run(array, &FioJob::random_write(128 * 1024).queue_depth(96))
                .bandwidth_mb_per_sec
        };
        let (draid18, spdk18) = (wide(SystemKind::Draid), wide(SystemKind::SpdkRaid));
        assert!(
            draid18 > 1.8 * spdk18,
            "width 18: draid {draid18:.0} vs spdk {spdk18:.0}"
        );
    }

    #[test]
    fn reads_saturate_equally_across_systems() {
        // Fig. 9 at large I/O: all systems reach the NIC goodput.
        let job = FioJob::random_read(128 * 1024).queue_depth(32);
        let draid = Runner::quick().run(array(SystemKind::Draid), &job);
        let spdk = Runner::quick().run(array(SystemKind::SpdkRaid), &job);
        let ratio = draid.bandwidth_mb_per_sec / spdk.bandwidth_mb_per_sec;
        assert!((0.9..1.2).contains(&ratio), "ratio {ratio}");
        // Near the 92 Gbps goodput (11500 MB/s).
        assert!(draid.bandwidth_mb_per_sec > 9_000.0, "{draid:?}");
    }

    #[test]
    fn member_cpu_stays_modest() {
        // §7: dRAID must stay resource-conservative on storage servers.
        let job = FioJob::random_write(128 * 1024).queue_depth(32);
        let report = Runner::quick().run(array(SystemKind::Draid), &job);
        assert!(
            report.max_member_cpu < 0.5,
            "member core too busy: {}",
            report.max_member_cpu
        );
    }
}
