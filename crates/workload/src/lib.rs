//! # draid-workload — FIO-style workload generation and benchmark running
//!
//! The paper evaluates raw block-device performance with FIO (§9.1): random
//! reads/writes of a given I/O size at a fixed queue depth against the
//! virtual RAID device. This crate reproduces that methodology on the
//! simulated array:
//!
//! * [`FioJob`] — the workload description (read ratio, I/O size, queue
//!   depth, working set, optional targeting of a failed member's chunks for
//!   rebuild-style experiments).
//! * [`Runner`] — a closed-loop driver: `queue_depth` outstanding I/Os, each
//!   completion immediately submitting the next, with a warm-up phase and a
//!   measured phase (counters reset in between, like FIO's `ramp_time`).
//! * [`RunReport`] — bandwidth/IOPS/latency plus resource-level measurements
//!   (host NIC traffic, per-core utilization, retries/timeouts) used by the
//!   figure harness.
//!
//! ## Example
//!
//! ```
//! use draid_block::Cluster;
//! use draid_core::{ArrayConfig, ArraySim, SystemKind};
//! use draid_workload::{FioJob, Runner};
//!
//! let cfg = ArrayConfig::paper_default(SystemKind::Draid);
//! let array = ArraySim::new(Cluster::homogeneous(8), cfg)?;
//! let job = FioJob::random_write(128 * 1024).queue_depth(8);
//! let report = Runner::quick().run(array, &job);
//! assert!(report.bandwidth_mb_per_sec > 0.0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fio;
mod open_loop;
mod replay;
mod runner;

pub use fio::{FioJob, FioStream};
pub use open_loop::{ArrivalPattern, OpenLoopReport, OpenLoopRunner};
pub use replay::{replay, IoTrace, ParseTraceError, ReplayReport, TraceRecord};
pub use runner::{RunReport, Runner};
