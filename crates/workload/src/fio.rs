//! FIO-style job descriptions and offset generation.

use draid_core::{IoKind, Layout, UserIo};
use draid_sim::DetRng;

/// A random-access block workload, in FIO's vocabulary: `bs` (I/O size),
/// `rwmixread` (read ratio), `iodepth` (queue depth) over a bounded working
/// set of the virtual device.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FioJob {
    /// Fraction of operations that are reads (`1.0` = read-only).
    pub read_ratio: f64,
    /// Bytes per I/O.
    pub io_size: u64,
    /// Outstanding I/Os (closed loop).
    pub queue_depth: usize,
    /// Size of the region offsets are drawn from.
    pub working_set: u64,
    /// Offset alignment; defaults to `io_size`.
    pub align: u64,
    /// When set, every read targets chunks stored on this member — the
    /// rebuild-style workload of Fig. 17a where *all* reads are degraded.
    pub target_member: Option<usize>,
    /// Sequential instead of random offsets (FIO's `rw=read|write`); the
    /// cursor wraps at the working-set end.
    pub sequential: bool,
    /// Workload RNG seed.
    pub seed: u64,
}

impl FioJob {
    /// 100% random reads of `io_size` bytes.
    pub fn random_read(io_size: u64) -> Self {
        Self::mixed(1.0, io_size)
    }

    /// 100% random writes of `io_size` bytes.
    pub fn random_write(io_size: u64) -> Self {
        Self::mixed(0.0, io_size)
    }

    /// A read/write mix (the Fig. 13 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `read_ratio` is outside `[0, 1]` or `io_size` is zero.
    pub fn mixed(read_ratio: f64, io_size: u64) -> Self {
        assert!((0.0..=1.0).contains(&read_ratio), "bad read ratio");
        assert!(io_size > 0, "I/O size must be positive");
        FioJob {
            read_ratio,
            io_size,
            queue_depth: 32,
            working_set: 16 << 30,
            align: io_size,
            target_member: None,
            sequential: false,
            seed: 0xF10,
        }
    }

    /// Switches to sequential access (builder style).
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Sets the queue depth (builder style).
    pub fn queue_depth(mut self, qd: usize) -> Self {
        assert!(qd > 0, "queue depth must be positive");
        self.queue_depth = qd;
        self
    }

    /// Sets the working-set size.
    pub fn working_set(mut self, bytes: u64) -> Self {
        assert!(bytes >= self.io_size, "working set smaller than one I/O");
        self.working_set = bytes;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Targets all reads at chunks held by `member` (Fig. 17a rebuild).
    pub fn target_member(mut self, member: usize) -> Self {
        self.target_member = Some(member);
        self
    }

    /// Draws the next I/O.
    pub fn next_io(&self, rng: &mut DetRng, layout: &Layout) -> UserIo {
        let kind = if rng.chance(self.read_ratio) {
            IoKind::Read
        } else {
            IoKind::Write
        };
        let offset = match self.target_member {
            Some(member) if kind == IoKind::Read => self.member_offset(rng, layout, member),
            _ => self.uniform_offset(rng),
        };
        match kind {
            IoKind::Read => UserIo::read(offset, self.io_size),
            IoKind::Write => UserIo::write(offset, self.io_size),
        }
    }

    fn uniform_offset(&self, rng: &mut DetRng) -> u64 {
        let slots = (self.working_set / self.align).max(1);
        let mut off = rng.below(slots) * self.align;
        // Clamp so the I/O stays inside the working set.
        if off + self.io_size > self.working_set {
            off = self.working_set - self.io_size;
            off -= off % self.align.min(off.max(1));
        }
        off
    }

    /// An offset whose first chunk lives on `member` (skipping stripes where
    /// `member` holds parity).
    fn member_offset(&self, rng: &mut DetRng, layout: &Layout, member: usize) -> u64 {
        let stripe_bytes = layout.stripe_data_bytes();
        let stripes = (self.working_set / stripe_bytes).max(1);
        loop {
            let s = rng.below(stripes);
            if let Some(k) = (0..layout.data_chunks()).find(|&k| layout.data_member(s, k) == member)
            {
                let chunk_base = s * stripe_bytes + k as u64 * layout.chunk_size();
                let span = layout.chunk_size().saturating_sub(self.io_size);
                let within = if span == 0 || self.io_size >= layout.chunk_size() {
                    0
                } else {
                    (rng.below(span / self.align.min(span).max(1) + 1)) * self.align.min(span)
                };
                return chunk_base + within.min(span);
            }
            // `member` holds parity in stripe `s`; try another stripe.
        }
    }
}

/// A stateful stream of I/Os from a [`FioJob`]: owns the RNG and, for
/// sequential jobs, the advancing cursor. The runners consume jobs through
/// streams so `FioJob` itself stays a plain, copyable description.
#[derive(Clone, Debug)]
pub struct FioStream {
    job: FioJob,
    rng: DetRng,
    cursor: u64,
}

impl FioStream {
    /// Creates a stream seeded from the job.
    pub fn new(job: FioJob) -> Self {
        FioStream {
            rng: DetRng::new(job.seed),
            cursor: 0,
            job,
        }
    }

    /// The underlying job description.
    pub fn job(&self) -> &FioJob {
        &self.job
    }

    /// Draws the next I/O.
    pub fn next_io(&mut self, layout: &Layout) -> UserIo {
        if self.job.sequential {
            let kind = if self.rng.chance(self.job.read_ratio) {
                IoKind::Read
            } else {
                IoKind::Write
            };
            if self.cursor + self.job.io_size > self.job.working_set {
                self.cursor = 0;
            }
            let offset = self.cursor;
            self.cursor += self.job.io_size.max(self.job.align);
            match kind {
                IoKind::Read => UserIo::read(offset, self.job.io_size),
                IoKind::Write => UserIo::write(offset, self.job.io_size),
            }
        } else {
            self.job.next_io(&mut self.rng, layout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use draid_core::{ArrayConfig, SystemKind};

    fn layout() -> Layout {
        Layout::new(&ArrayConfig::paper_default(SystemKind::Draid))
    }

    #[test]
    fn offsets_respect_alignment_and_bounds() {
        let job = FioJob::random_write(128 * 1024)
            .working_set(1 << 30)
            .seed(1);
        let mut rng = DetRng::new(job.seed);
        let l = layout();
        for _ in 0..1000 {
            let io = job.next_io(&mut rng, &l);
            assert_eq!(io.offset % job.align, 0);
            assert!(io.offset + io.len <= job.working_set);
            assert_eq!(io.kind, IoKind::Write);
        }
    }

    #[test]
    fn read_ratio_respected() {
        let job = FioJob::mixed(0.75, 4096).seed(2);
        let mut rng = DetRng::new(job.seed);
        let l = layout();
        let reads = (0..10_000)
            .filter(|_| job.next_io(&mut rng, &l).kind == IoKind::Read)
            .count();
        assert!((7_000..8_000).contains(&reads), "got {reads}");
    }

    #[test]
    fn member_targeting_hits_only_that_member() {
        let l = layout();
        let job = FioJob::random_read(16 * 1024)
            .working_set(1 << 30)
            .target_member(3)
            .seed(3);
        let mut rng = DetRng::new(job.seed);
        for _ in 0..500 {
            let io = job.next_io(&mut rng, &l);
            let sio = &l.map(io.offset, io.len)[0];
            assert!(sio.segments.iter().all(|s| s.member == 3));
        }
    }

    #[test]
    #[should_panic(expected = "bad read ratio")]
    fn ratio_validated() {
        FioJob::mixed(1.5, 4096);
    }

    #[test]
    fn sequential_stream_advances_and_wraps() {
        let l = layout();
        let job = FioJob::random_write(128 * 1024)
            .working_set(512 * 1024)
            .sequential();
        let mut stream = FioStream::new(job);
        let offsets: Vec<u64> = (0..6).map(|_| stream.next_io(&l).offset).collect();
        assert_eq!(
            offsets,
            vec![0, 131072, 262144, 393216, 0, 131072],
            "cursor advances by io_size and wraps at the working set"
        );
    }

    #[test]
    fn random_stream_matches_stateless_job() {
        let l = layout();
        let job = FioJob::random_read(16 * 1024).seed(9);
        let mut stream = FioStream::new(job);
        let mut rng = DetRng::new(job.seed);
        for _ in 0..50 {
            let a = stream.next_io(&l);
            let b = job.next_io(&mut rng, &l);
            assert_eq!((a.offset, a.len), (b.offset, b.len));
        }
    }
}
